(* Morsel-driven parallelism: serial-vs-parallel bit-identity across
   every strategy and pool size (fault injection on), cancellation
   mid-region, and the guard ledger-merge accounting contract.

   The thresholds are forced down so even the tiny emp/dept corpus goes
   through the parallel kernels; on a single-core host the domains
   still exist and the chunks still cross them, so the identity checks
   exercise real cross-domain execution. *)

open Nra
open Test_support
module Iosim = Nra_storage.Iosim

let () =
  Pool.set_parallel_threshold 2;
  Pool.set_morsel 4

let pool_sizes = [ 0; 1; 2; 4 ]

let with_domains d f =
  Pool.set_size d;
  Fun.protect ~finally:(fun () -> Pool.set_size 0) f

(* One run, bit-exactly serialized.  Faults are reseeded per run: the
   draw sequence must not depend on the pool size (workers never draw),
   and identical seeds make that observable. *)
let run_csv ~faults cat sql strategy =
  if faults then Fault.configure ~seed:23 0.02 else Fault.disable ();
  Fun.protect ~finally:Fault.disable (fun () ->
      match Nra.query ~strategy cat sql with
      | Ok rel -> Relation.to_csv rel
      | Error m ->
          Alcotest.fail
            (Printf.sprintf "%s failed on %s: %s"
               (Nra.strategy_to_string strategy)
               sql m))

let check_identical ~faults mk_cat corpus =
  List.iter
    (fun sql ->
      List.iter
        (fun strategy ->
          let reference =
            with_domains 0 (fun () ->
                run_csv ~faults (mk_cat ()) sql strategy)
          in
          List.iter
            (fun d ->
              if d > 0 then
                let got =
                  with_domains d (fun () ->
                      run_csv ~faults (mk_cat ()) sql strategy)
                in
                if got <> reference then
                  Alcotest.fail
                    (Printf.sprintf
                       "domains=%d diverges from serial for %s on: %s" d
                       (Nra.strategy_to_string strategy)
                       sql))
            pool_sizes)
        all_strategies)
    corpus

let test_emp_dept_identity () =
  check_identical ~faults:true
    (fun () -> emp_dept_catalog ())
    subquery_corpus

let tpch_corpus =
  [
    "select o_orderkey from orders where o_orderkey < 50 and o_totalprice \
     > all (select l_extendedprice from lineitem where l_orderkey = \
     o_orderkey)";
    "select p_partkey from part where p_partkey < 40 and p_retailprice < \
     any (select ps_supplycost from partsupp where ps_partkey = p_partkey)";
    "select c_custkey from customer where c_custkey < 30 and exists \
     (select * from orders where o_custkey = c_custkey)";
  ]

let tpch_catalog () =
  let cat =
    Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.002 }
  in
  Tpch.Gen.add_benchmark_indexes cat;
  cat

let test_tpch_identity () =
  (* one catalog (generation is the expensive part); queries are
     read-only so sharing it across runs is sound *)
  let cat = tpch_catalog () in
  check_identical ~faults:true (fun () -> cat) tpch_corpus

(* ---------- the columnar axis ----------

   The batch kernels promise bit-identity with row-at-a-time execution
   at every pool size and frame budget.  One reference run — columnar
   off, serial, unbounded memory — and every combination of
   columnar {off,on} × domains {0,2,4} × frames {8,∞}, faults on, must
   serialize to the same bytes.  The tpch corpus at 8 frames is the
   spill leg: grace join and spillable nest run over columnar-packed
   spill pages there. *)

let with_columnar c f =
  let prev = Nra.columnar_enabled () in
  Nra.set_columnar c;
  Fun.protect ~finally:(fun () -> Nra.set_columnar prev) f

let with_frames fr f =
  Nra.Bufpool.set_frames fr;
  Fun.protect ~finally:(fun () -> Nra.Bufpool.set_frames None) f

let check_columnar_matrix mk_cat corpus =
  List.iter
    (fun sql ->
      List.iter
        (fun strategy ->
          let reference =
            with_columnar false (fun () ->
                with_domains 0 (fun () ->
                    run_csv ~faults:true (mk_cat ()) sql strategy))
          in
          List.iter
            (fun columnar ->
              List.iter
                (fun frames ->
                  List.iter
                    (fun d ->
                      let got =
                        with_columnar columnar (fun () ->
                            with_frames frames (fun () ->
                                with_domains d (fun () ->
                                    run_csv ~faults:true (mk_cat ()) sql
                                      strategy)))
                      in
                      if got <> reference then
                        Alcotest.fail
                          (Printf.sprintf
                             "columnar=%b frames=%s domains=%d diverges for \
                              %s on: %s"
                             columnar
                             (match frames with
                             | None -> "inf"
                             | Some n -> string_of_int n)
                             d
                             (Nra.strategy_to_string strategy)
                             sql))
                    [ 0; 2; 4 ])
                [ None; Some 8 ])
            [ false; true ])
        all_strategies)
    corpus

let test_columnar_matrix_emp_dept () =
  (* a slice of the corpus: one flat filter, one join, one correlated
     EXISTS, one quantified comparison — the four kernel shapes *)
  let slice =
    [
      List.nth subquery_corpus 0;
      List.nth subquery_corpus 1;
      List.nth subquery_corpus 2;
      List.nth subquery_corpus 8;
    ]
  in
  check_columnar_matrix (fun () -> emp_dept_catalog ()) slice

let test_columnar_matrix_tpch () =
  let cat = tpch_catalog () in
  check_columnar_matrix (fun () -> cat) tpch_corpus

(* ---------- the pool primitive itself ---------- *)

let test_chunk_order () =
  with_domains 4 (fun () ->
      let res =
        Pool.parallel_chunks ~min_chunk:1 ~n:100 (fun _led ~lo ~hi ->
            (lo, hi))
      in
      let covered = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "chunks contiguous and in order" !covered lo;
          covered := hi)
        res;
      Alcotest.(check int) "chunks cover the range" 100 !covered)

let test_first_error_wins () =
  with_domains 4 (fun () ->
      match
        Pool.parallel_chunks ~min_chunk:1 ~n:10 (fun _led ~lo ~hi:_ ->
            if lo >= 3 then failwith (string_of_int lo) else lo)
      with
      | _ -> Alcotest.fail "expected a Failure"
      | exception Failure m ->
          (* chunks 3..9 all fail; the barrier re-raises the
             lowest-indexed error — what the serial loop would have hit *)
          Alcotest.(check string) "serial-order first error" "3" m)

let test_cancel_mid_region () =
  with_domains 2 (fun () ->
      let tok = Guard.token () in
      match
        Guard.with_budget
          (Guard.budget ~cancel_on:tok ())
          (fun () ->
            Pool.parallel_chunks ~min_chunk:1 ~n:64 (fun _led ~lo:_ ~hi:_ ->
                (* the first morsel cancels; later morsels poll the
                   token and are skipped *)
                Guard.cancel tok))
      with
      | _ -> Alcotest.fail "expected Killed Cancelled"
      | exception Guard.Killed Guard.Cancelled -> ())

(* ---------- ledger merge ---------- *)

let test_ledger_merge_rows_and_io () =
  with_domains 2 (fun () ->
      Iosim.reset ();
      Guard.with_budget
        (Guard.budget ~max_rows:1000 ())
        (fun () ->
          ignore
            (Pool.parallel_chunks ~min_chunk:1 ~n:8 (fun led ~lo ~hi ->
                 Pool.Ledger.add_rows led (hi - lo);
                 led.Pool.Ledger.seq_pages <- led.Pool.Ledger.seq_pages + 1)));
      let spend = Guard.last_spend () in
      Alcotest.(check int) "worker rows charged at the barrier" 8
        spend.Guard.rows;
      let c = Iosim.counters () in
      Alcotest.(check int) "worker pages absorbed" 8 c.Iosim.seq_pages)

let test_ledger_merge_enforces_budget () =
  with_domains 2 (fun () ->
      match
        Guard.with_budget
          (Guard.budget ~max_rows:3 ())
          (fun () ->
            Pool.parallel_chunks ~min_chunk:1 ~n:8 (fun led ~lo ~hi ->
                Pool.Ledger.add_rows led (hi - lo)))
      with
      | _ -> Alcotest.fail "expected a rows kill at the barrier"
      | exception Guard.Killed (Guard.Budget_exceeded Guard.Rows) -> ())

(* The accounting invariant: the same query charges the same simulated
   I/O — to the exact counter — at every pool size, because the charge
   sites (and the fault draws ahead of them) stay owner-side. *)
let test_sim_io_parity () =
  let cat = tpch_catalog () in
  let sql = List.hd tpch_corpus in
  let measure d =
    with_domains d (fun () ->
        Fault.configure ~seed:5 0.02;
        Fun.protect ~finally:Fault.disable (fun () ->
            Iosim.reset ();
            match Nra.query ~strategy:Nra.Nra_optimized cat sql with
            | Ok _ ->
                let fs = Fault.stats () in
                (Iosim.counters (), Iosim.simulated_seconds (),
                 fs.Fault.injected)
            | Error m -> Alcotest.fail m))
  in
  let ref_counters, ref_sim, ref_faults = measure 0 in
  List.iter
    (fun d ->
      let c, sim, faults = measure d in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d charges the serial counters" d)
        true
        (c = ref_counters);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "domains=%d simulated seconds" d)
        ref_sim sim;
      Alcotest.(check int)
        (Printf.sprintf "domains=%d fault draws" d)
        ref_faults faults)
    pool_sizes

let () =
  Alcotest.run "parallel"
    [
      ( "identity",
        [
          Alcotest.test_case "emp/dept corpus, all strategies, faults on"
            `Quick test_emp_dept_identity;
          Alcotest.test_case "tpch corpus, all strategies, faults on"
            `Quick test_tpch_identity;
        ] );
      ( "columnar",
        [
          Alcotest.test_case
            "emp/dept slice, columnar x domains x frames, faults on" `Quick
            test_columnar_matrix_emp_dept;
          Alcotest.test_case
            "tpch corpus, columnar x domains x frames (spill), faults on"
            `Quick test_columnar_matrix_tpch;
        ] );
      ( "pool",
        [
          Alcotest.test_case "morsel results keep chunk order" `Quick
            test_chunk_order;
          Alcotest.test_case "lowest-chunk error is re-raised" `Quick
            test_first_error_wins;
          Alcotest.test_case "cancellation mid-region" `Quick
            test_cancel_mid_region;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "rows and pages merge at the barrier" `Quick
            test_ledger_merge_rows_and_io;
          Alcotest.test_case "merged rows enforce the budget" `Quick
            test_ledger_merge_enforces_budget;
          Alcotest.test_case "simulated I/O parity across pool sizes"
            `Quick test_sim_io_parity;
        ] );
    ]
