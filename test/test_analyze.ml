open Nra
open Test_support
module A = Planner.Analyze
module R = Planner.Resolved

let analyze cat sql =
  match A.analyze_string cat sql with
  | Ok t -> t
  | Error m -> Alcotest.fail (Printf.sprintf "analyze failed (%s): %s" sql m)

let expect_error cat needle sql =
  match A.analyze_string cat sql with
  | Error m ->
      let lower = String.lowercase_ascii m in
      let nl = String.lowercase_ascii needle in
      let contains =
        let n = String.length nl and h = String.length lower in
        let rec go i = i + n <= h && (String.sub lower i n = nl || go (i + 1)) in
        n = 0 || go 0
      in
      if not contains then
        Alcotest.fail
          (Printf.sprintf "error %S does not mention %S (query: %s)" m needle
             sql)
  | Ok _ -> Alcotest.fail ("accepted: " ^ sql)

let test_flat_query () =
  let cat = emp_dept_catalog () in
  let t = analyze cat "select ename from emp where salary > 50" in
  Alcotest.(check int) "one block" 1 (List.length t.A.blocks);
  Alcotest.(check int) "depth 0" 0 t.A.depth;
  Alcotest.(check bool) "linear trivially" true t.A.linear;
  Alcotest.(check int) "local conjunct" 1
    (List.length t.A.root.A.local)

let test_block_numbering () =
  let cat = paper_catalog () in
  let t =
    analyze cat
      {|select r.b from r
        where r.b not in (select s.e from s where r.d = s.g and s.h > all
          (select t.j from t where t.k = r.c))|}
  in
  Alcotest.(check (list int)) "pre-order ids" [ 1; 2; 3 ]
    (List.map (fun b -> b.A.id) t.A.blocks)

let test_correlation_classification () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      {|select dname from dept
        where exists (select * from emp
                      where emp.dept_id = dept.dept_id and salary > 50)|}
  in
  let child = (List.hd t.A.root.A.children).A.block in
  Alcotest.(check int) "one local (salary)" 1 (List.length child.A.local);
  Alcotest.(check int) "one correlated" 1 (List.length child.A.correlated);
  Alcotest.(check bool) "linear" true t.A.linear

let test_tree_query_not_linear () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      {|select dname from dept
        where exists (select * from emp where emp.dept_id = dept.dept_id)
          and budget > any (select hours from project
                            where project.owner_dept = dept.dept_id)|}
  in
  Alcotest.(check int) "two children" 2 (List.length t.A.root.A.children);
  Alcotest.(check bool) "tree queries are not linear" false t.A.linear;
  Alcotest.(check int) "depth 1" 1 t.A.depth

let test_nonadjacent_correlation_not_linear () =
  let cat = paper_catalog () in
  let t =
    analyze cat
      {|select r.b from r where r.b in
         (select s.e from s where r.d = s.g and exists
            (select * from t where t.k = r.c))|}
  in
  Alcotest.(check bool) "correlation skipping a level breaks linearity" false
    t.A.linear

let test_self_join_uids () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      {|select e1.ename from emp e1
        where e1.salary > any (select e2.salary from emp e2
                               where e2.manager_id = e1.emp_id)|}
  in
  let uids = List.map fst t.A.by_uid |> List.sort_uniq compare in
  Alcotest.(check int) "two distinct uids" 2 (List.length uids)

let test_same_alias_in_nested_blocks () =
  let cat = emp_dept_catalog () in
  (* both blocks bind the bare name emp; uids must disambiguate *)
  let t =
    analyze cat
      {|select ename from emp
        where salary > all (select salary - 1 from emp where emp_id = 1)|}
  in
  let uids = List.map fst t.A.by_uid in
  Alcotest.(check int) "two bindings" 2 (List.length uids);
  Alcotest.(check bool) "uids distinct" true
    (List.length (List.sort_uniq compare uids) = 2)

let test_not_normalization () =
  let cat = emp_dept_catalog () in
  (* NOT over EXISTS / IN / quantifiers must normalize into linking ops *)
  let t =
    analyze cat
      {|select ename from emp
        where not (salary in (select budget from dept))|}
  in
  (match (List.hd t.A.root.A.children).A.link with
  | A.L_not_in _ -> ()
  | _ -> Alcotest.fail "NOT (x IN S) should become NOT IN");
  let t =
    analyze cat
      {|select ename from emp
        where not (salary > all (select budget from dept))|}
  in
  match (List.hd t.A.root.A.children).A.link with
  | A.L_quant (_, Three_valued.Le, `Any) -> ()
  | _ -> Alcotest.fail "NOT (x > ALL S) should become x <= ANY S"

let test_marker_is_key () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      "select ename from emp where exists (select * from dept where dept.dept_id = emp.dept_id)"
  in
  let child = (List.hd t.A.root.A.children).A.block in
  Alcotest.(check string) "marker column" "dept_id"
    child.A.marker.R.col

let test_not_null_tracking () =
  let cat = emp_dept_catalog () in
  let t = analyze cat "select ename from emp" in
  let rc uid col = { R.uid; col; block_id = 1 } in
  Alcotest.(check bool) "ename is NOT NULL" true
    (A.col_not_null t (rc "emp" "ename"));
  Alcotest.(check bool) "salary is nullable" false
    (A.col_not_null t (rc "emp" "salary"));
  Alcotest.(check bool) "literal not nullable" true
    (A.expr_not_nullable t (R.RLit (vi 1)));
  Alcotest.(check bool) "null literal nullable" false
    (A.expr_not_nullable t (R.RLit vnull));
  Alcotest.(check bool) "division is nullable" false
    (A.expr_not_nullable t
       (R.RBin (Sql.Ast.Div, R.RLit (vi 1), R.RLit (vi 2))))

let test_scalar_subquery_forms () =
  let cat = emp_dept_catalog () in
  let t =
    analyze cat
      {|select ename from emp
        where salary > (select avg(salary) from emp e2
                        where e2.dept_id = emp.dept_id)|}
  in
  let child = (List.hd t.A.root.A.children).A.block in
  (match child.A.scalar_agg with
  | Some (Sql.Ast.Avg, Some _) -> ()
  | _ -> Alcotest.fail "aggregate scalar subquery not recognized");
  match (List.hd t.A.root.A.children).A.link with
  | A.L_scalar (_, Three_valued.Gt) -> ()
  | _ -> Alcotest.fail "scalar link"

(* type JA: IN / θ SOME / θ ALL over an aggregate subquery — the block
   carries [scalar_agg], has no linked attribute, and the site is never
   positive (the empty group aggregates to a value) *)
let test_ja_subquery_forms () =
  let cat = emp_dept_catalog () in
  let child_of sql =
    let t = analyze cat sql in
    List.hd t.A.root.A.children
  in
  let c =
    child_of
      {|select ename from emp
        where salary in (select max(budget) from dept
                         where dept.dept_id = emp.dept_id)|}
  in
  (match c.A.block.A.scalar_agg with
  | Some (Sql.Ast.Max, Some _) -> ()
  | _ -> Alcotest.fail "IN-aggregate subquery not recognized as JA");
  Alcotest.(check bool) "JA block has no linked attribute" true
    (c.A.block.A.linked_attr = None);
  Alcotest.(check bool) "IN over an aggregate is not a positive site"
    false (A.child_positive c);
  let c =
    child_of
      {|select ename from emp
        where salary > all (select count(*) from project
                            where project.lead_emp = emp.emp_id)|}
  in
  (match (c.A.link, c.A.block.A.scalar_agg) with
  | A.L_quant (_, Three_valued.Gt, `All), Some (Sql.Ast.Count_star, None) ->
      ()
  | _ -> Alcotest.fail "ALL-aggregate subquery not recognized as JA");
  (* the non-aggregate lookalike keeps its linked attribute and its
     positive IN site *)
  let c =
    child_of "select ename from emp where dept_id in (select dept_id from dept)"
  in
  Alcotest.(check bool) "non-aggregate IN stays positive" true
    (A.child_positive c);
  Alcotest.(check bool) "non-aggregate IN keeps linked_attr" true
    (c.A.block.A.linked_attr <> None)

let test_errors () =
  let cat = emp_dept_catalog () in
  expect_error cat "unknown table" "select * from nosuch";
  expect_error cat "unknown column" "select nocol from emp";
  expect_error cat "ambiguous" "select dept_id from emp, dept";
  expect_error cat "unknown table or alias"
    "select zz.ename from emp";
  expect_error cat "duplicate"
    "select * from emp e, dept e";
  expect_error cat "or"
    {|select * from emp
      where salary > 1 or exists (select * from dept)|};
  expect_error cat "group by"
    {|select * from emp
      where exists (select dept_id from dept group by dept_id)|};
  expect_error cat "limit"
    {|select * from emp where dept_id in (select dept_id from dept limit 1)|};
  expect_error cat "exactly one"
    "select * from emp where dept_id in (select * from dept)";
  expect_error cat "aggregate"
    "select * from emp where max(salary) > 1";
  expect_error cat "expected an identifier" "select 1 from "

let test_outer_scope_column_in_inner_select () =
  let cat = emp_dept_catalog () in
  (* the subquery selects an outer column — legal SQL *)
  let t =
    analyze cat
      {|select ename from emp
        where salary in (select emp.salary from dept
                         where dept.dept_id = emp.dept_id)|}
  in
  let child = (List.hd t.A.root.A.children).A.block in
  match child.A.linked_attr with
  | Some (R.RCol c) -> Alcotest.(check int) "resolves to outer" 1 c.R.block_id
  | _ -> Alcotest.fail "linked attr"

let () =
  Alcotest.run "analyze"
    [
      ( "blocks",
        [
          Alcotest.test_case "flat" `Quick test_flat_query;
          Alcotest.test_case "numbering" `Quick test_block_numbering;
          Alcotest.test_case "correlation" `Quick
            test_correlation_classification;
          Alcotest.test_case "tree query" `Quick test_tree_query_not_linear;
          Alcotest.test_case "non-adjacent correlation" `Quick
            test_nonadjacent_correlation_not_linear;
          Alcotest.test_case "marker" `Quick test_marker_is_key;
        ] );
      ( "resolution",
        [
          Alcotest.test_case "self join uids" `Quick test_self_join_uids;
          Alcotest.test_case "same alias nested" `Quick
            test_same_alias_in_nested_blocks;
          Alcotest.test_case "outer column in inner select" `Quick
            test_outer_scope_column_in_inner_select;
          Alcotest.test_case "NOT NULL tracking" `Quick test_not_null_tracking;
        ] );
      ( "normalization",
        [
          Alcotest.test_case "NOT pushing" `Quick test_not_normalization;
          Alcotest.test_case "scalar subqueries" `Quick
            test_scalar_subquery_forms;
          Alcotest.test_case "JA subqueries" `Quick test_ja_subquery_forms;
        ] );
      ("errors", [ Alcotest.test_case "all rejected" `Quick test_errors ]);
    ]
