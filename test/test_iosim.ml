open Nra
module I = Nra_storage.Iosim

(* these tests pin the simulator's exact accounting by calling the
   charge functions directly (no retry wrapper), so a CI-wide
   NRA_FAULT_INJECT run must not perturb them; likewise the
   integration case pins the exact charges of the unrewritten plans,
   so a CI-wide NRA_REWRITE run must not change them either *)
let () = Fault.disable ()
let () = Nra.set_rewrite_rules []

let approx = Alcotest.float 1e-9

let with_config cfg f =
  let saved = I.config () in
  I.set_config cfg;
  I.reset ();
  Fun.protect ~finally:(fun () -> I.set_config saved; I.reset ()) f

let cfg =
  {
    I.rows_per_page = 10;
    t_seq_ms = 1.0;
    t_rand_ms = 10.0;
    t_fetch_ms = 0.5;
    cache_pages = 0;
    page_size_kb = 8.0;
  }

let test_scan_pages () =
  with_config cfg (fun () ->
      I.charge_scan_rows 25;
      Alcotest.(check int) "ceil(25/10)" 3 (I.counters ()).I.seq_pages;
      I.charge_scan_rows 1;
      Alcotest.(check int) "one more page" 4 (I.counters ()).I.seq_pages;
      I.charge_scan_rows 0;
      Alcotest.(check int) "empty scan free" 4 (I.counters ()).I.seq_pages)

let test_probe () =
  with_config cfg (fun () ->
      I.charge_probe ~matches:3;
      Alcotest.(check int) "leaf + 3 fetches" 4 (I.counters ()).I.rand_pages)

let test_fetch_and_time () =
  with_config cfg (fun () ->
      I.charge_scan_rows 10;
      I.charge_probe ~matches:0;
      I.charge_fetch_rows 100;
      (* 1 page seq * 1ms + 1 rand * 10ms + 100 rows * 0.5ms = 61 ms *)
      Alcotest.check approx "simulated seconds" 0.061 (I.simulated_seconds ()))

let test_reset () =
  with_config cfg (fun () ->
      I.charge_scan_rows 100;
      I.reset ();
      Alcotest.check approx "reset" 0.0 (I.simulated_seconds ()))

let test_executors_charge () =
  with_config I.default_config (fun () ->
      let cat =
        Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.002 }
      in
      Tpch.Gen.add_benchmark_indexes cat;
      let lo, hi = Tpch.Queries.q1_window ~outer_fraction:0.3 in
      let sql = Tpch.Queries.q1 ~date_lo:lo ~date_hi:hi in
      I.reset ();
      ignore (Nra.query_exn ~strategy:Nra.Naive cat sql);
      let naive = I.counters () in
      Alcotest.(check bool) "naive probes" true (naive.I.rand_pages > 0);
      I.reset ();
      ignore (Nra.query_exn ~strategy:Nra.Nra_optimized cat sql);
      let nra = I.counters () in
      Alcotest.(check bool) "NRA never probes" true (nra.I.rand_pages = 0);
      Alcotest.(check bool) "NRA scans" true (nra.I.seq_pages > 0);
      Alcotest.(check bool) "NRA pays fetch" true (nra.I.fetched_rows > 0))

let test_lru () =
  let module L = Nra_storage.Lru in
  let l = L.create ~capacity:2 in
  Alcotest.(check bool) "first touch misses" false (L.touch l 1);
  Alcotest.(check bool) "second touch hits" true (L.touch l 1);
  ignore (L.touch l 2);
  ignore (L.touch l 1);
  (* recency is 1 > 2 — inserting 3 evicts 2 *)
  ignore (L.touch l 3);
  Alcotest.(check bool) "lru evicted" false (L.mem l 2);
  Alcotest.(check bool) "recent survives" true (L.mem l 1);
  Alcotest.(check int) "size bounded" 2 (L.size l);
  L.clear l;
  Alcotest.(check int) "cleared" 0 (L.size l);
  let l0 = L.create ~capacity:0 in
  Alcotest.(check bool) "capacity 0 never hits" false
    (L.touch l0 7 || L.touch l0 7)

let test_buffer_cache () =
  with_config { cfg with I.cache_pages = 1 } (fun () ->
      (* rows 0..9 share page 0 (rows_per_page = 10) *)
      I.charge_row_fetch ~table:"t" ~row_id:3;
      I.charge_row_fetch ~table:"t" ~row_id:7;
      Alcotest.(check int) "one miss, one hit" 1 (I.counters ()).I.rand_pages;
      Alcotest.(check int) "hits counted" 1 (I.cache_hits ());
      (* a different page evicts page 0 in a 1-page cache *)
      I.charge_row_fetch ~table:"t" ~row_id:15;
      I.charge_row_fetch ~table:"t" ~row_id:3;
      Alcotest.(check int) "re-read after eviction" 3
        (I.counters ()).I.rand_pages;
      (* same page number of another table is a distinct page *)
      I.charge_row_fetch ~table:"u" ~row_id:3;
      Alcotest.(check int) "tables do not alias" 4
        (I.counters ()).I.rand_pages)

let test_cache_disabled () =
  with_config cfg (fun () ->
      I.charge_row_fetch ~table:"t" ~row_id:1;
      I.charge_row_fetch ~table:"t" ~row_id:1;
      Alcotest.(check int) "no cache: every fetch pays" 2
        (I.counters ()).I.rand_pages)

let () =
  Alcotest.run "iosim"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru;
          Alcotest.test_case "buffer cache" `Quick test_buffer_cache;
          Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "scan pages" `Quick test_scan_pages;
          Alcotest.test_case "probe" `Quick test_probe;
          Alcotest.test_case "fetch and time" `Quick test_fetch_and_time;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "integration",
        [
          Alcotest.test_case "executors charge the model" `Quick
            test_executors_charge;
        ] );
    ]
