(* The statistics subsystem: histograms, per-column statistics, the
   generation-checked store, selectivity arithmetic, and the auto
   strategy's cost-based choice pinned at both ends of the Figure 4
   sweep. *)

open Nra
module I = Nra_storage.Iosim
module H = Stats.Histogram
module CS = Stats.Col_stats
module Card = Stats.Cardinality

(* auto's pinned choices are the choices over unrewritten plans;
   a CI-wide NRA_REWRITE run must not shift them *)
let () = Nra.set_rewrite_rules []

let vi i = Value.Int i
let approx = Alcotest.float 0.05

(* ---------- histograms ---------- *)

let test_histogram_uniform () =
  let vs = Array.init 1_000 (fun i -> vi (i + 1)) in
  match H.build vs with
  | None -> Alcotest.fail "histogram over non-empty values"
  | Some h ->
      Alcotest.(check int) "buckets" 32 (H.buckets h);
      let bounds = H.bounds h in
      Alcotest.(check Test_support.value_testable)
        "minimum" (vi 1) bounds.(0);
      Alcotest.(check Test_support.value_testable)
        "maximum" (vi 1_000)
        bounds.(Array.length bounds - 1);
      Alcotest.check approx "below min" 0.0 (H.frac_below h (vi 0));
      Alcotest.check approx "at max" 1.0 (H.frac_below h (vi 1_000));
      Alcotest.check approx "median" 0.5 (H.frac_below h (vi 500));
      Alcotest.check approx "first quartile" 0.25 (H.frac_below h (vi 250));
      Alcotest.check approx "interquartile range" 0.5
        (H.frac_between h (vi 250) (vi 750))

let test_histogram_skewed () =
  (* 900 copies of 1 and the 100 values 101..200: equi-depth boundaries
     concentrate where the data does *)
  let vs =
    Array.init 1_000 (fun i -> if i < 900 then vi 1 else vi (i - 799))
  in
  match H.build vs with
  | None -> Alcotest.fail "histogram over non-empty values"
  | Some h ->
      Alcotest.check approx "mass at the spike" 0.9 (H.frac_below h (vi 1));
      Alcotest.check approx "tail midpoint" 0.95 (H.frac_below h (vi 150))

let test_histogram_degenerate () =
  Alcotest.(check bool) "all NULL" true (H.build [| Value.Null |] = None);
  Alcotest.(check bool) "empty" true (H.build [||] = None);
  match H.build [| vi 7; Value.Null; vi 7 |] with
  | None -> Alcotest.fail "constant column still has a histogram"
  | Some h ->
      Alcotest.check approx "everything at the constant" 1.0
        (H.frac_below h (vi 7))

(* ---------- per-column statistics ---------- *)

let test_col_stats_basics () =
  let vs =
    Array.init 1_000 (fun i ->
        if i mod 10 = 9 then Value.Null else vi (i mod 100))
  in
  let cs = CS.collect vs in
  Alcotest.(check int) "rows" 1_000 cs.CS.rows;
  Alcotest.(check int) "nulls" 100 cs.CS.nulls;
  (* the nullified positions (i ≡ 9 mod 10) are exactly the ones whose
     value would be ≡ 9 mod 10, so those 10 residues never occur *)
  Alcotest.(check int) "ndv" 90 cs.CS.ndv;
  Alcotest.check approx "null fraction" 0.1 (CS.null_frac cs);
  Alcotest.check approx "equality selectivity" 0.01 (CS.eq_sel cs)

let test_sel_cmp_matches_actual () =
  let vs = Array.init 1_000 (fun i -> vi (i + 1)) in
  let cs = CS.collect vs in
  let actual p = float_of_int (Array.length (Array.of_list (List.filter p (Array.to_list vs)))) /. 1_000. in
  let t_of op v = fst (CS.sel_cmp cs op (vi v)) in
  Alcotest.check approx "x <= 300" (actual (fun x -> x <= vi 300))
    (t_of Three_valued.Le 300);
  Alcotest.check approx "x > 800" (actual (fun x -> x > vi 800))
    (t_of Three_valued.Gt 800);
  Alcotest.check approx "x = 42" 0.001 (t_of Three_valued.Eq 42);
  (* comparisons against NULL are never true, always unknown *)
  Alcotest.(check (pair approx approx))
    "x = NULL" (0.0, 1.0)
    (CS.sel_cmp cs Three_valued.Eq Value.Null)

let test_pages_per_value_clustering () =
  let rpp = (I.config ()).I.rows_per_page in
  let n = rpp * 10 in
  (* clustered: each of the 10 values fills exactly one page *)
  let clustered = Array.init n (fun i -> vi (i / rpp)) in
  (* scattered: each of the 10 values appears on every page *)
  let scattered = Array.init n (fun i -> vi (i mod 10)) in
  let c = CS.collect clustered and s = CS.collect scattered in
  Alcotest.check approx "clustered ppv" 1.0 c.CS.pages_per_value;
  Alcotest.check approx "scattered ppv" 10.0 s.CS.pages_per_value

(* ---------- 3VL selectivity algebra ---------- *)

let test_three_valued_algebra () =
  let check name (et, eu) (t, u) =
    Alcotest.check approx (name ^ " true") et t;
    Alcotest.check approx (name ^ " unknown") eu u
  in
  check "and of certainties" (0.25, 0.0)
    (Card.and3 (0.5, 0.0) (0.5, 0.0));
  check "or of certainties" (0.75, 0.0) (Card.or3 (0.5, 0.0) (0.5, 0.0));
  (* x AND x with unknowns: truth tables aggregated independently *)
  check "and with unknowns" (0.25, 0.29)
    (Card.and3 (0.5, 0.2) (0.5, 0.2));
  check "not keeps unknown" (0.3, 0.2) (Card.not3 (0.5, 0.2));
  check "double negation" (0.5, 0.2) (Card.not3 (Card.not3 (0.5, 0.2)))

(* ---------- ANALYZE, the store, and staleness ---------- *)

let test_analyze_command () =
  let cat = Test_support.emp_dept_catalog () in
  (match Nra.exec cat "analyze emp" with
  | Ok (Done m) -> Alcotest.(check string) "ack" "analyzed emp" m
  | Ok _ -> Alcotest.fail "expected Done"
  | Error m -> Alcotest.fail m);
  (match Nra.exec cat "analyze" with
  | Ok (Done m) -> Alcotest.(check string) "ack all" "analyzed 3 table(s)" m
  | Ok _ -> Alcotest.fail "expected Done"
  | Error m -> Alcotest.fail m);
  (match Nra.exec cat "analyze nosuch" with
  | Error m ->
      Alcotest.(check bool) "names the table" true
        (String.length m > 0 && String.sub m 0 7 = "unknown")
  | Ok _ -> Alcotest.fail "ANALYZE of a missing table must fail");
  match Stats.Stats_store.find_for cat "emp" with
  | None -> Alcotest.fail "statistics absent after ANALYZE"
  | Some ts ->
      Alcotest.(check int) "row count" 6 ts.Stats.Table_stats.rows;
      (match Stats.Table_stats.col ts "salary" with
      | None -> Alcotest.fail "no salary stats"
      | Some cs ->
          Alcotest.(check int) "salary ndv" 5 cs.CS.ndv;
          Alcotest.(check int) "salary nulls" 1 cs.CS.nulls)

let test_staleness () =
  let cat = Test_support.emp_dept_catalog () in
  (match Nra.exec cat "analyze emp" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "fresh after ANALYZE" true
    (Stats.Stats_store.find_for cat "emp" <> None);
  (match
     Nra.exec cat "insert into emp values (7, 'gil', 1, 55, null)"
   with
  | Ok (Count 1) -> ()
  | Ok _ | Error _ -> Alcotest.fail "insert failed");
  Alcotest.(check bool) "stale after the table changed" true
    (Stats.Stats_store.find_for cat "emp" = None);
  (match Nra.exec cat "analyze emp" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  match Stats.Stats_store.find_for cat "emp" with
  | None -> Alcotest.fail "re-ANALYZE did not refresh"
  | Some ts -> Alcotest.(check int) "new row count" 7 ts.Stats.Table_stats.rows

(* ---------- EXPLAIN COSTS ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_explain_costs () =
  let cat = Test_support.emp_dept_catalog () in
  let sql =
    "select dname from dept where exists (select * from emp where \
     emp.dept_id = dept.dept_id)"
  in
  (match Nra.explain_costs cat sql with
  | Error m -> Alcotest.fail m
  | Ok report ->
      Alcotest.(check bool) "lists every strategy" true
        (List.for_all (fun (n, _) -> contains report n)
           (List.filter (fun (n, _) -> n <> "hybrid" && n <> "auto")
              Nra.strategies));
      Alcotest.(check bool) "announces the choice" true
        (contains report "auto picks:");
      (* nothing ANALYZEd yet: the report must say so *)
      Alcotest.(check bool) "flags missing statistics" true
        (contains report "no fresh statistics"));
  (match Nra.exec cat "analyze" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Nra.explain_costs cat sql with
  | Error m -> Alcotest.fail m
  | Ok report ->
      Alcotest.(check bool) "no staleness note once analyzed" false
        (contains report "no fresh statistics"));
  match Nra.explain_costs cat "select nonsense from nowhere" with
  | Ok _ -> Alcotest.fail "explain_costs over a bad query must fail"
  | Error _ -> ()

(* ---------- the auto strategy on the Figure 4 sweep ---------- *)

let tpch_cat () =
  let cat =
    Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.01 }
  in
  Tpch.Gen.add_benchmark_indexes cat;
  (match Nra.exec cat "analyze" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  cat

let q1_at rows =
  let lo, hi = Tpch.Queries.q1_window ~outer_fraction:(rows /. 1_500_000.) in
  Tpch.Queries.q1 ~date_lo:lo ~date_hi:hi

let concrete =
  [ Nra.Naive; Classical; Magic; Nra_original; Nra_optimized; Nra_full ]

let sim cat strategy sql =
  ignore (Nra.query_exn ~strategy cat sql);
  I.reset ();
  ignore (Nra.query_exn ~strategy cat sql);
  I.simulated_seconds ()

let test_auto_choice_regression () =
  let cat = tpch_cat () in
  let choice sql =
    match Nra.auto_choice cat sql with
    | Ok s -> Nra.strategy_to_string s
    | Error m -> Alcotest.fail m
  in
  (* the crossover of Figure 4: indexed nested iteration wins while the
     outer block is tiny, the scan-based NRA wins past it *)
  Alcotest.(check string) "small outer end" "classical"
    (choice (q1_at 500.));
  Alcotest.(check string) "large outer end" "nra-full"
    (choice (q1_at 16_000.))

let test_auto_within_tolerance () =
  let cat = tpch_cat () in
  List.iter
    (fun rows ->
      let sql = q1_at rows in
      let best =
        List.fold_left
          (fun acc s -> Float.min acc (sim cat s sql))
          infinity concrete
      in
      let auto = sim cat Nra.Auto sql in
      if auto > (1.10 *. best) +. 1e-9 then
        Alcotest.fail
          (Printf.sprintf
             "auto sim %.4fs exceeds 1.1 x best %.4fs at outer=%.0f" auto
             best rows))
    [ 500.; 16_000. ]

(* ---------- budget-aware pick (Guard.remaining -> Cost.pick) ---------- *)

let test_budget_pick_flips () =
  let open Stats.Cost in
  let est strategy cost_ms fetched_rows =
    {
      strategy;
      cost_ms;
      breakdown = { seq_pages = 0.0; rand_pages = 0.0; fetched_rows };
    }
  in
  (* cheapest by I/O but intermediate-heavy, vs pricier but scan-shaped *)
  let heavy = est Nra_optimized 10.0 100_000.0 in
  let lean = est Classical 25.0 200.0 in
  let choice ?io ?rows () =
    (pick ~remaining_io_ms:io ~remaining_rows:rows [ heavy; lean ]).strategy
  in
  Alcotest.(check bool) "unlimited: globally cheapest" true
    (choice () = Nra_optimized);
  (* the row allowance shrinks below the heavy plan's intermediates:
     the choice flips to the lean plan even though it prices higher *)
  Alcotest.(check bool) "tight rows flips the choice" true
    (choice ~rows:10_000 () = Classical);
  (* shrinks below every plan: doomed either way, so take the cheapest
     path to the kill *)
  Alcotest.(check bool) "hopeless budget: cheapest again" true
    (choice ~rows:50 () = Nra_optimized);
  (* an I/O allowance the lean plan does not fit prunes it back out *)
  Alcotest.(check bool) "io prunes the lean plan" true
    (choice ~io:15.0 ~rows:10_000 () = Nra_optimized);
  (* end to end: auto_choice consults Guard.remaining () of an active
     budget and still resolves to a runnable strategy *)
  let cat = Test_support.emp_dept_catalog () in
  (match Nra.exec cat "analyze" with Ok _ -> () | Error m -> Alcotest.fail m);
  let sql = "select ename from emp where salary > 50" in
  Guard.with_budget (Guard.budget ~max_rows:5 ()) (fun () ->
      match Nra.auto_choice cat sql with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)

let () =
  Alcotest.run "stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "uniform" `Quick test_histogram_uniform;
          Alcotest.test_case "skewed" `Quick test_histogram_skewed;
          Alcotest.test_case "degenerate" `Quick test_histogram_degenerate;
        ] );
      ( "col_stats",
        [
          Alcotest.test_case "basics" `Quick test_col_stats_basics;
          Alcotest.test_case "selectivity matches data" `Quick
            test_sel_cmp_matches_actual;
          Alcotest.test_case "pages per value" `Quick
            test_pages_per_value_clustering;
          Alcotest.test_case "3VL algebra" `Quick test_three_valued_algebra;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "command" `Quick test_analyze_command;
          Alcotest.test_case "staleness" `Quick test_staleness;
          Alcotest.test_case "explain costs" `Quick test_explain_costs;
        ] );
      ( "auto",
        [
          Alcotest.test_case "figure 4 choices pinned" `Slow
            test_auto_choice_regression;
          Alcotest.test_case "within 10% of the best" `Slow
            test_auto_within_tolerance;
          Alcotest.test_case "budget-aware pick flips" `Quick
            test_budget_pick_flips;
        ] );
    ]
