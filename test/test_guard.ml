(* The query guard: budget semantics, cooperative cancellation, kill
   events, and — end to end — Auto's kill-and-fallback degradation path
   (ISSUE: skewed estimates -> Auto's pick blows its derived budget ->
   killed mid-execution -> I/O charges rolled back -> rerun under
   Nra_optimized -> same relation, fallback counted). *)

open Nra
module Iosim = Nra_storage.Iosim
module Q = Tpch.Queries

(* pinned row budgets and fallback costs assume the unrewritten plans *)
let () = Nra.set_rewrite_rules []

let kill_msg r = Printf.sprintf "query killed: budget exceeded (%s)" r

let nested_sql =
  "select ename from emp where dept_id in (select dept_id from dept \
   where budget > 40)"

(* ---------- budgets as data ---------- *)

let test_budget_algebra () =
  Alcotest.(check bool) "unlimited" true (Guard.is_unlimited Guard.unlimited);
  let a = Guard.budget ~wall_ms:100.0 ~max_rows:10 () in
  let b = Guard.budget ~wall_ms:50.0 ~sim_io_ms:2.0 () in
  Alcotest.(check bool) "limited" false (Guard.is_unlimited a);
  let m = Guard.min_budget a b in
  Alcotest.(check (option (float 0.0))) "wall min" (Some 50.0) m.Guard.wall_ms;
  Alcotest.(check (option (float 0.0))) "io kept" (Some 2.0) m.Guard.sim_io_ms;
  Alcotest.(check (option int)) "rows kept" (Some 10) m.Guard.max_rows;
  let u = Guard.min_budget Guard.unlimited Guard.unlimited in
  Alcotest.(check bool) "min of unlimited" true (Guard.is_unlimited u)

(* ---------- kills through the public API ---------- *)

let test_sim_io_kill () =
  let cat = Test_support.emp_dept_catalog () in
  Guard.reset_events ();
  let guard = Guard.budget ~sim_io_ms:1e-9 () in
  (match Nra.query ~guard cat nested_sql with
  | Error m -> Alcotest.(check string) "killed" (kill_msg "simulated-io") m
  | Ok _ -> Alcotest.fail "expected a sim-I/O kill");
  let ev = Guard.events () in
  Alcotest.(check int) "kill counted" 1 ev.Guard.budget_kills;
  (* the same query without a budget still works: no poisoned state *)
  match Nra.query cat nested_sql with
  | Ok rel -> Alcotest.(check int) "rows" 4 (Relation.cardinality rel)
  | Error m -> Alcotest.fail m

let test_max_rows_kill () =
  let cat = Test_support.emp_dept_catalog () in
  Guard.reset_events ();
  let guard = Guard.budget ~max_rows:0 () in
  (* correlated: the nested relational pipeline materializes a wide
     intermediate, which is what the row budget meters *)
  let correlated =
    "select ename from emp where exists (select * from project where \
     owner_dept = emp.dept_id)"
  in
  (match Nra.query ~guard cat correlated with
  | Error m ->
      Alcotest.(check string) "killed" (kill_msg "intermediate-rows") m
  | Ok _ -> Alcotest.fail "expected a row-budget kill");
  Alcotest.(check int) "kill counted" 1 (Guard.events ()).Guard.budget_kills

let test_cancellation () =
  let cat = Test_support.emp_dept_catalog () in
  Guard.reset_events ();
  let tok = Guard.token () in
  Alcotest.(check bool) "fresh token" false (Guard.cancelled tok);
  Guard.cancel tok;
  Alcotest.(check bool) "cancelled" true (Guard.cancelled tok);
  (match Nra.query ~guard:(Guard.budget ~cancel_on:tok ()) cat
           "select ename from emp"
   with
  | Error m -> Alcotest.(check string) "cancelled" "query killed: cancelled" m
  | Ok _ -> Alcotest.fail "expected cancellation");
  Alcotest.(check int) "counted" 1 (Guard.events ()).Guard.cancellations

let test_generous_budget_is_invisible () =
  let cat = Test_support.emp_dept_catalog () in
  Guard.reset_events ();
  let guard =
    Guard.budget ~wall_ms:1e9 ~sim_io_ms:1e9 ~max_rows:max_int ()
  in
  let expected =
    match Nra.query cat nested_sql with
    | Ok rel -> rel
    | Error m -> Alcotest.fail m
  in
  (match Nra.query ~guard cat nested_sql with
  | Ok rel ->
      Alcotest.(check bool) "same result" true (Relation.equal_bag expected rel)
  | Error m -> Alcotest.fail m);
  let ev = Guard.events () in
  Alcotest.(check int) "no kills" 0 ev.Guard.budget_kills;
  Alcotest.(check int) "no fallbacks" 0 ev.Guard.auto_fallbacks

(* ---------- library-level semantics ---------- *)

let test_wall_clock_recheck () =
  match
    Guard.with_budget
      (Guard.budget ~wall_ms:1.0 ())
      (fun () ->
        Unix.sleepf 0.01;
        Guard.recheck ();
        `No_kill)
  with
  | `No_kill -> Alcotest.fail "expected a wall-clock kill"
  | exception Guard.Killed (Guard.Budget_exceeded Guard.Wall_clock) -> ()

let test_nested_budgets () =
  Guard.with_budget
    (Guard.budget ~max_rows:10 ())
    (fun () ->
      (* an inner unlimited budget shields nothing: its rows count
         against the enclosing budget once it exits *)
      Guard.with_budget Guard.unlimited (fun () -> Guard.add_rows 8);
      match Guard.add_rows 5 with
      | () -> Alcotest.fail "inner rows must propagate to the outer budget"
      | exception Guard.Killed (Guard.Budget_exceeded Guard.Rows) -> ())

let test_remaining () =
  Guard.with_budget
    (Guard.budget ~max_rows:10 ~sim_io_ms:5.0 ())
    (fun () ->
      Guard.add_rows 4;
      let r = Guard.remaining () in
      Alcotest.(check (option int)) "rows left" (Some 6) r.Guard.max_rows;
      Alcotest.(check (option (float 1e-6)))
        "io untouched" (Some 5.0) r.Guard.sim_io_ms);
  Alcotest.(check bool) "restored" true (Guard.is_unlimited (Guard.remaining ()))

(* ---------- the degradation path, end to end ---------- *)

(* TPC-H at a small fixed scale and seed, with fresh statistics; the
   attempt budget pinned to the bare estimate (overrun 1.0, floor 0)
   turns every optimistic cost estimate into a mid-execution kill.  The
   sweep must produce at least one fallback, every Auto result must
   equal the plain Nra_optimized result, and on fallback the rolled-back
   attempt must not inflate the I/O ledger: Auto's total simulated time
   equals the fallback strategy's own. *)
let bench_queries () =
  let q1 =
    [ 500.; 1_500.; 4_000.; 8_000.; 12_000.; 16_000. ]
    |> List.map (fun n ->
           let lo, hi = Q.q1_window ~outer_fraction:(n /. 1_500_000.) in
           Q.q1 ~date_lo:lo ~date_hi:hi)
  in
  let q2 quant =
    [ 12_000.; 24_000.; 36_000.; 48_000. ]
    |> List.map (fun n ->
           let size_lo, size_hi =
             Q.size_window ~outer_fraction:(n /. 200_000.)
           in
           Q.q2 ~quant ~size_lo ~size_hi
             ~availqty_max:
               (Q.availqty_bound ~fraction:(16_000. /. 800_000.))
             ~quantity:25)
  in
  q1 @ q2 Q.Any @ q2 Q.All

let test_degradation_path () =
  let cat =
    Tpch.Gen.generate { Tpch.Gen.default with Tpch.Gen.scale = 0.01 }
  in
  Tpch.Gen.add_benchmark_indexes cat;
  (match Nra.exec cat "analyze" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("analyze failed: " ^ m));
  let overrun, floor_ms = Nra.auto_guard () in
  Alcotest.(check (float 0.0)) "default overrun" 4.0 overrun;
  Alcotest.(check (float 0.0)) "default floor" 1.0 floor_ms;
  Nra.set_auto_guard ~overrun:1.0 ~floor_ms:0.0 ();
  Fun.protect
    ~finally:(fun () ->
      Nra.set_auto_guard ~overrun ~floor_ms ();
      Guard.reset_events ())
    (fun () ->
      let fallbacks = ref 0 in
      List.iter
        (fun sql ->
          Guard.reset_events ();
          Iosim.reset ();
          let auto_rel =
            match Nra.query ~strategy:Nra.Auto cat sql with
            | Ok rel -> rel
            | Error m -> Alcotest.fail ("auto failed: " ^ m)
          in
          let auto_sim = Iosim.simulated_seconds () in
          let fell_back = (Guard.events ()).Guard.auto_fallbacks > 0 in
          Alcotest.(check int)
            "degraded attempts are not user-facing kills" 0
            (Guard.events ()).Guard.budget_kills;
          Iosim.reset ();
          let opt_rel =
            match Nra.query ~strategy:Nra.Nra_optimized cat sql with
            | Ok rel -> rel
            | Error m -> Alcotest.fail m
          in
          let opt_sim = Iosim.simulated_seconds () in
          Alcotest.(check bool)
            "auto agrees with nra-optimized" true
            (Relation.equal_bag auto_rel opt_rel);
          if fell_back then begin
            incr fallbacks;
            Alcotest.(check (float 1e-9))
              "killed attempt's charges rolled back" opt_sim auto_sim
          end)
        (bench_queries ());
      if !fallbacks = 0 then
        Alcotest.fail
          "no query degraded: the sweep no longer exercises fallback")

let () =
  Alcotest.run "guard"
    [
      ( "budget",
        [
          Alcotest.test_case "algebra" `Quick test_budget_algebra;
          Alcotest.test_case "sim-io kill" `Quick test_sim_io_kill;
          Alcotest.test_case "row kill" `Quick test_max_rows_kill;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "generous budget invisible" `Quick
            test_generous_budget_is_invisible;
          Alcotest.test_case "wall-clock recheck" `Quick
            test_wall_clock_recheck;
          Alcotest.test_case "nesting" `Quick test_nested_budgets;
          Alcotest.test_case "remaining" `Quick test_remaining;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "kill-and-fallback path" `Quick
            test_degradation_path;
        ] );
    ]
