(* The cooperative scheduler (ISSUE: truly interleaved statements on
   the virtual clock): seeded randomized interleaving-equivalence
   against serial execution across every strategy, virtual-clock
   monotonicity, no starvation under random admission bursts,
   preemption within one quantum of budget exhaustion, and fault-retry
   backoff as virtual (never wall-clock) time. *)

open Nra
open Test_support
module Scheduler = Nra_server.Scheduler
module Server = Nra_server.Server
module Session = Nra_server.Session
module Admission = Nra_server.Admission
module Iosim = Nra_storage.Iosim

(* splitmix64: the tests' own seeded PRNG, so every schedule is
   reproducible from its seed alone *)
let splitmix seed =
  let s = ref (Int64.of_int (seed * 2 + 1)) in
  fun bound ->
    s := Int64.add !s 0x9E3779B97F4A7C15L;
    let z = !s in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.unsigned_rem z (Int64.of_int bound))

let corpus = Array.of_list subquery_corpus

(* ---------- randomized interleaving equivalence ----------

   N statements spawned as concurrent scheduler tasks, the schedule
   driven by a seeded random chooser at a seed-dependent quantum: every
   interleaving must produce exactly the serial results, for every
   strategy including auto (whose attempt/rollback protocol is the
   delicate part under interleaving). *)

let total_yields = ref 0

let interleaved_results ~seed ~quantum_ms ~strategy cat sqls =
  let rand = splitmix seed in
  let chooser ~now:_ ids = List.nth ids (rand (List.length ids)) in
  let sch = Scheduler.create ~quantum_ms ~chooser () in
  let n = Array.length sqls in
  let results = Array.make n None in
  Array.iteri
    (fun i sql ->
      ignore
        (Scheduler.spawn sch
           ~label:(Printf.sprintf "q%d" i)
           (fun () -> results.(i) <- Some (Nra.query ~strategy cat sql))))
    sqls;
  Scheduler.run_until_idle sch;
  Alcotest.(check int) "all tasks retired" 0 (Scheduler.alive sch);
  total_yields := !total_yields + (Scheduler.stats sch).Scheduler.yields;
  Array.map
    (function
      | Some r -> r
      | None -> Alcotest.fail "task finished without a result")
    results

let check_matches_serial ~what serial interleaved sqls =
  Array.iteri
    (fun i sql ->
      match (serial.(i), interleaved.(i)) with
      | Ok a, Ok b ->
          if not (Relation.equal_bag a b) then
            Alcotest.fail
              (Format.asprintf
                 "%s: interleaved result differs from serial on:@.%s@.serial:@.%a@.interleaved:@.%a"
                 what sql Relation.pp a Relation.pp b)
      | Error a, Error b -> Alcotest.(check string) (what ^ ": same error") a b
      | Ok _, Error e ->
          Alcotest.fail
            (Printf.sprintf "%s: interleaved failed where serial ran (%s): %s"
               what sql e)
      | Error e, Ok _ ->
          Alcotest.fail
            (Printf.sprintf "%s: interleaved ran where serial failed (%s): %s"
               what sql e))
    sqls

let test_interleaving_equivalence () =
  let cat = emp_dept_catalog () in
  ignore (Nra.exec cat "analyze");
  let quanta = [| 0.01; 0.05; 0.2 |] in
  let seeds_per_n = 18 in
  (* 3 population sizes x 18 seeds = 54 randomized schedules, each
     replayed under every strategy *)
  List.iter
    (fun n ->
      for seed = 0 to seeds_per_n - 1 do
        let sqls =
          Array.init n (fun k ->
              corpus.(((seed * 7) + (k * 5)) mod Array.length corpus))
        in
        let quantum_ms = quanta.(seed mod Array.length quanta) in
        List.iter
          (fun strategy ->
            let serial = Array.map (Nra.query ~strategy cat) sqls in
            let interleaved =
              interleaved_results ~seed ~quantum_ms ~strategy cat sqls
            in
            check_matches_serial
              ~what:
                (Printf.sprintf "n=%d seed=%d q=%g %s" n seed quantum_ms
                   (Nra.strategy_to_string strategy))
              serial interleaved sqls)
          all_strategies
      done)
    [ 2; 4; 8 ];
  (* the whole point is that these schedules are NOT serial *)
  Alcotest.(check bool)
    (Printf.sprintf "schedules interleaved (%d yields)" !total_yields)
    true (!total_yields > 0)

(* ---------- virtual-clock monotonicity ---------- *)

let test_clock_monotone () =
  let cat = emp_dept_catalog () in
  let rand = splitmix 424242 in
  let nows = ref [] in
  let chooser ~now ids =
    nows := now :: !nows;
    List.nth ids (rand (List.length ids))
  in
  let sch = Scheduler.create ~quantum_ms:0.02 ~chooser () in
  for i = 0 to 5 do
    ignore
      (Scheduler.spawn sch (fun () ->
           ignore (Nra.query cat corpus.(i * 3 mod Array.length corpus))))
  done;
  (* a sleeper too: wake-time jumps must also be monotone *)
  ignore
    (Scheduler.spawn sch (fun () ->
         try
           Nra.Fault.with_retries (fun () ->
               raise (Nra.Fault.Io_fault "synthetic"))
         with Nra.Fault.Io_fault _ -> ()));
  Scheduler.run_until_idle sch;
  let observed = List.rev !nows in
  Alcotest.(check bool) "scheduling points observed" true
    (List.length observed > 10);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        if a > b then
          Alcotest.fail
            (Printf.sprintf "clock went backwards: %f then %f" a b)
        else monotone rest
    | _ -> ()
  in
  monotone observed;
  Alcotest.(check bool) "final clock past every scheduling point" true
    (Scheduler.now sch >= List.fold_left Float.max 0.0 observed)

(* ---------- no starvation under random admission bursts ---------- *)

let test_no_starvation () =
  let cat = emp_dept_catalog () in
  for seed = 0 to 9 do
    let rand = splitmix (1000 + seed) in
    let srv =
      Server.create
        ~config:
          {
            Server.default_config with
            admission =
              {
                Admission.max_concurrent = 3;
                queue_len = 10;
                queue_timeout_ms = Some 1e9;
              };
            quantum_ms = 0.05;
          }
        cat
    in
    let sessions = Array.init 4 (fun _ -> Server.session srv ()) in
    let submitted = ref 0 and immediate = ref 0 in
    let t = ref 0.0 in
    for _ = 1 to 30 do
      (* bursty: arrival gaps of 0 pile statements onto the same instant *)
      t := !t +. (float_of_int (rand 3) *. 0.05);
      incr submitted;
      match
        Server.submit srv ~at:!t
          sessions.(rand (Array.length sessions))
          corpus.(rand (Array.length corpus))
      with
      | `Done _ -> incr immediate
      | `Running _ | `Queued -> ()
    done;
    let late = Server.finish srv in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: every statement reached an outcome" seed)
      !submitted
      (!immediate + List.length late);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no task left behind" seed)
      0
      (Scheduler.alive (Server.scheduler srv))
  done

(* ---------- preemption within one quantum of exhaustion ----------

   Synthetic tasks with controlled charges (one 0.1 ms page per step)
   pin down the bound exactly: a task whose budget trips mid-quantum is
   killed at its next checkpoint, so its recorded spend can overshoot
   the limit by at most one charge — and never by a whole quantum of
   someone else's work, because suspended tasks accrue nothing. *)

let test_preemption_within_quantum () =
  (* this test pins exact charge accounting with raw Iosim calls (no
     retry wrapper), so a CI-wide NRA_FAULT_INJECT run must not perturb
     it *)
  Nra.Fault.disable ();
  let quantum = 0.5 in
  let charge_ms = 0.1 in
  let limit = 1.0 in
  let sch = Scheduler.create ~quantum_ms:quantum () in
  let victim_spend = ref nan and victim_killed = ref false in
  ignore
    (Scheduler.spawn sch ~label:"victim" (fun () ->
         (try
            Guard.with_budget
              (Guard.budget ~sim_io_ms:limit ())
              (fun () ->
                while true do
                  Iosim.charge_scan_rows 100;
                  Guard.tick ()
                done)
          with Guard.Killed (Guard.Budget_exceeded Guard.Sim_io) ->
            victim_killed := true);
         victim_spend := (Guard.last_spend ()).Guard.sim_io_ms));
  (* concurrent bulk work: its charges must not count against (or
     delay the kill of) the victim *)
  ignore
    (Scheduler.spawn sch ~label:"bulk" (fun () ->
         for _ = 1 to 200 do
           Iosim.charge_scan_rows 100;
           Guard.tick ()
         done));
  Scheduler.run_until_idle sch;
  Alcotest.(check bool) "victim killed on budget" true !victim_killed;
  Alcotest.(check bool)
    (Printf.sprintf "spend %f exceeds the limit" !victim_spend)
    true
    (!victim_spend > limit);
  Alcotest.(check bool)
    (Printf.sprintf
       "overshoot %f bounded by one charge, far inside one quantum"
       (!victim_spend -. limit))
    true
    (!victim_spend -. limit <= charge_ms +. 1e-9);
  let st = Scheduler.stats sch in
  Alcotest.(check bool) "the schedule actually interleaved" true
    (st.Scheduler.yields > 0)

(* ---------- fault-retry backoff is virtual time ---------- *)

let test_backoff_virtual () =
  let backoff = 50.0 in
  let retries = 6 in
  (* probability 0: no injection on real read paths; with_retries still
     retries the synthetic fault below and sleeps the backoff *)
  Nra.Fault.configure ~seed:1 ~max_retries:retries ~backoff_ms:backoff 0.0;
  Fun.protect ~finally:Nra.Fault.disable @@ fun () ->
  let bt0 = (Nra.Fault.stats ()).Nra.Fault.backoff_ms_total in
  let cat = emp_dept_catalog () in
  let sch = Scheduler.create ~quantum_ms:0.05 () in
  let sleeper_done = ref nan and query_done = ref nan in
  let escaped = ref false in
  ignore
    (Scheduler.spawn sch ~label:"retry-storm" (fun () ->
         (try
            Nra.Fault.with_retries (fun () ->
                raise (Nra.Fault.Io_fault "synthetic"))
          with Nra.Fault.Io_fault _ -> escaped := true);
         sleeper_done := Scheduler.now sch));
  ignore
    (Scheduler.spawn sch ~label:"concurrent-query" (fun () ->
         ignore (Nra.query cat corpus.(4));
         query_done := Scheduler.now sch));
  let host_t0 = Unix.gettimeofday () in
  Scheduler.run_until_idle sch;
  let host_s = Unix.gettimeofday () -. host_t0 in
  (* a 6-retry exponential storm at 50 ms base = 3150 ms of virtual
     backoff; the host must not have slept it *)
  let total = (Nra.Fault.stats ()).Nra.Fault.backoff_ms_total -. bt0 in
  Alcotest.(check bool) "the storm exhausted its retries" true !escaped;
  Alcotest.(check bool)
    (Printf.sprintf "backoff accounted (%.0f ms)" total)
    true
    (total >= backoff *. 63.0 -. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "virtual clock slept it (%.0f ms)" !sleeper_done)
    true
    (!sleeper_done >= total -. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "host did not (%.3f s)" host_s)
    true (host_s < 1.0);
  (* the concurrent statement finished while the storm was asleep *)
  Alcotest.(check bool)
    (Printf.sprintf "concurrent progress (query %.2f ms, storm %.2f ms)"
       !query_done !sleeper_done)
    true
    (!query_done < !sleeper_done);
  let st = Scheduler.stats sch in
  Alcotest.(check bool) "sleeps were taken as suspensions" true
    (st.Scheduler.sleeps >= retries);
  Alcotest.(check bool) "idle gaps were jumped, not slept" true
    (st.Scheduler.idle_jumped_ms > 0.0)

(* ---------- determinism: same seed, same schedule ---------- *)

let test_deterministic_replay () =
  (* replay pins the exact schedule; a seeded global fault trace would
     diverge between the two runs (draws are consumed in sequence), so
     opt out of a CI-wide NRA_FAULT_INJECT *)
  Nra.Fault.disable ();
  let cat = emp_dept_catalog () in
  let run () =
    (* start from a cold page cache both times: cache warmth changes
       charge granularity, and with it the schedule *)
    Iosim.reset ();
    let sch = Scheduler.create ~quantum_ms:0.05 () in
    let order = ref [] in
    for i = 0 to 4 do
      ignore
        (Scheduler.spawn sch
           ~label:(Printf.sprintf "q%d" i)
           (fun () ->
             ignore (Nra.query cat corpus.(i));
             order := i :: !order))
    done;
    Scheduler.run_until_idle sch;
    (List.rev !order, (Scheduler.stats sch).Scheduler.slices)
  in
  let o1, s1 = run () in
  let o2, s2 = run () in
  Alcotest.(check (list int)) "same completion order" o1 o2;
  Alcotest.(check int) "same slice count" s1 s2

let () =
  Alcotest.run "scheduler"
    [
      ( "equivalence",
        [
          Alcotest.test_case "randomized interleavings match serial" `Quick
            test_interleaving_equivalence;
        ] );
      ( "properties",
        [
          Alcotest.test_case "virtual clock is monotone" `Quick
            test_clock_monotone;
          Alcotest.test_case "no starvation under bursts" `Quick
            test_no_starvation;
          Alcotest.test_case "preemption within one quantum" `Quick
            test_preemption_within_quantum;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "retry backoff is virtual time" `Quick
            test_backoff_virtual;
        ] );
    ]
