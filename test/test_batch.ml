(* The columnar batch layer: round-trip exactness, kernel-service
   equivalence with the row-at-a-time primitives, and the packed spill
   page format.

   The properties here are what the bit-identity argument in
   docs/PERF.md rests on: [to_relation (of_relation r) = r]
   structurally (constructors preserved, NULLs included),
   [Batch.hash_on] computes exactly [Row.hash_on]/[Row.has_null_on],
   and a compiled [filter_plan] agrees with [Expr.holds] on every row
   and every morsel split. *)

open Nra
open Test_support

let qtest = QCheck_alcotest.to_alcotest
let () = Batch.set_enabled true

(* ---------- generators ---------- *)

type colkind = KInt | KFloat | KString | KBool | KDate | KMixed

let ttype_of = function
  | KInt -> Ttype.Int
  | KFloat | KMixed -> Ttype.Float
  | KString -> Ttype.String
  | KBool -> Ttype.Bool
  | KDate -> Ttype.Date

(* small value domains so predicates and join keys actually collide *)
let gen_cell kind st =
  let open QCheck.Gen in
  match kind with
  | KInt -> vi (int_range (-20) 20 st)
  | KFloat -> vf (float_of_int (int_range (-80) 80 st) /. 4.0)
  | KString -> vs (oneofl [ ""; "a"; "ab"; "b"; "ba"; "zzz" ] st)
  | KBool -> Value.Bool (bool st)
  | KDate -> Value.Date (int_range 0 30 st)
  | KMixed ->
      if bool st then vi (int_range (-20) 20 st)
      else vf (float_of_int (int_range (-80) 80 st) /. 4.0)

(* a relation with per-column kinds and null densities: typed columns,
   mixed Int/Float columns (the Boxed fallback), and null-heavy /
   all-null columns all appear *)
let gen_relation st =
  let open QCheck.Gen in
  let ncols = int_range 1 5 st in
  let nrows = int_range 0 60 st in
  let kinds =
    Array.init ncols (fun _ ->
        oneofl [ KInt; KFloat; KString; KBool; KDate; KMixed ] st)
  in
  let null_p =
    Array.init ncols (fun _ -> oneofl [ 0.0; 0.1; 0.5; 0.9; 1.0 ] st)
  in
  let schema =
    Schema.of_columns
      (List.init ncols (fun i ->
           Schema.column (Printf.sprintf "c%d" i) (ttype_of kinds.(i))))
  in
  let rows =
    Array.init nrows (fun _ ->
        Array.init ncols (fun c ->
            if float_bound_inclusive 1.0 st < null_p.(c) then Value.Null
            else gen_cell kinds.(c) st))
  in
  Relation.make schema rows

let print_relation rel = Relation.to_csv rel

let arb_relation = QCheck.make ~print:print_relation gen_relation

(* predicates drawn from the vectorizable subset (plus cross-typed and
   NULL constants, which exercise the generic and constant plans) *)
let gen_pred ncols st =
  let open QCheck.Gen in
  let col st = Expr.Col (int_range 0 (ncols - 1) st) in
  let op st =
    oneofl
      [
        Three_valued.Eq;
        Three_valued.Neq;
        Three_valued.Lt;
        Three_valued.Le;
        Three_valued.Gt;
        Three_valued.Ge;
      ]
      st
  in
  let const st =
    if int_range 0 9 st = 0 then Value.Null
    else gen_cell (oneofl [ KInt; KFloat; KString; KBool; KDate ] st) st
  in
  let leaf st =
    match int_range 0 5 st with
    | 0 | 1 -> Expr.Cmp (op st, col st, Expr.Const (const st))
    | 2 -> Expr.Cmp (op st, col st, col st)
    | 3 ->
        if bool st then Expr.Is_null (col st) else Expr.Is_not_null (col st)
    | 4 ->
        Expr.In_list
          (col st, List.init (int_range 0 3 st) (fun _ -> const st))
    | _ -> Expr.Between (col st, Expr.Const (const st), Expr.Const (const st))
  in
  let rec tree depth st =
    if depth = 0 then leaf st
    else
      match int_range 0 2 st with
      | 0 -> Expr.And (tree (depth - 1) st, tree (depth - 1) st)
      | 1 -> Expr.Or (tree (depth - 1) st, tree (depth - 1) st)
      | _ -> leaf st
  in
  tree 2 st

let arb_rel_pred =
  QCheck.make
    ~print:(fun (rel, pred) ->
      Format.asprintf "%a@.%s" Expr.pp_pred pred (print_relation rel))
    (fun st ->
      let rel = gen_relation st in
      let pred = gen_pred (Schema.arity (Relation.schema rel)) st in
      (rel, pred))

(* structural equality on rows pins constructors: Value.compare treats
   Int 3 and Float 3.0 as equal, but a round-trip must not rewrite one
   into the other.  No NaN in the generated domain, so (=) is sound. *)
let rows_identical a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : Row.t) (y : Row.t) -> x = y) a b

(* ---------- properties ---------- *)

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"of_relation |> to_relation is identity"
    arb_relation (fun rel ->
      let rel' = Batch.to_relation (Batch.of_relation rel) in
      Schema.equal_names (Relation.schema rel) (Relation.schema rel')
      && rows_identical (Relation.rows rel) (Relation.rows rel'))

let prop_pack_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pack |> packed_iter rebuilds rows"
    arb_relation (fun rel ->
      let rows = Relation.rows rel in
      match Batch.pack rows with
      | None -> false (* uniform arity: pack must succeed *)
      | Some p ->
          let out = ref [] in
          Batch.packed_iter p (fun r -> out := r :: !out);
          Batch.packed_length p = Array.length rows
          && rows_identical rows (Array.of_list (List.rev !out)))

let prop_hash_on =
  QCheck.Test.make ~count:500 ~name:"hash_on matches Row.hash_on exactly"
    arb_relation (fun rel ->
      let rows = Relation.rows rel in
      let arity = Schema.arity (Relation.schema rel) in
      let idx_sets = [ Array.init arity Fun.id; [| 0 |] ] in
      List.for_all
        (fun idxs ->
          let h, nulls = Batch.hash_on (Batch.of_relation rel) idxs in
          Array.length h = Array.length rows
          && Array.for_all
               (fun i ->
                 h.(i) = Row.hash_on idxs rows.(i)
                 && Batch.Bitset.get nulls i = Row.has_null_on idxs rows.(i))
               (Array.init (Array.length rows) Fun.id))
        idx_sets)

let prop_filter_plan =
  QCheck.Test.make ~count:1000
    ~name:"filter_plan agrees with Expr.holds on every morsel split"
    arb_rel_pred (fun (rel, pred) ->
      let rows = Relation.rows rel in
      let n = Array.length rows in
      let expect =
        List.filter (fun i -> Expr.holds pred rows.(i)) (List.init n Fun.id)
      in
      match Batch.filter_plan pred rel with
      | None -> n = 0 (* the generated subset must always compile *)
      | Some plan ->
          let whole = Array.to_list (plan ~lo:0 ~hi:n) in
          let mid = n / 2 in
          let split =
            Array.to_list (plan ~lo:0 ~hi:mid)
            @ Array.to_list (plan ~lo:mid ~hi:n)
          in
          whole = expect && split = expect)

(* ---------- unit cases ---------- *)

let mk schema rows = Relation.make (Schema.of_columns schema) rows

let test_empty_roundtrip () =
  let rel = mk [ Schema.column "a" Ttype.Int ] [||] in
  let rel' = Batch.to_relation (Batch.of_relation rel) in
  Alcotest.(check int) "no rows" 0 (Relation.cardinality rel')

let test_mixed_column_preserved () =
  (* Ttype.Float admits Int cells: the column must come back with the
     same constructors, not coerced either way *)
  let rel =
    mk
      [ Schema.column "x" Ttype.Float ]
      [| [| vi 1 |]; [| vf 2.5 |]; [| vnull |]; [| vi 3 |] |]
  in
  let rel' = Batch.to_relation (Batch.of_relation rel) in
  Alcotest.(check bool)
    "constructors preserved" true
    (rows_identical (Relation.rows rel) (Relation.rows rel'))

let test_all_null_column () =
  let rel =
    mk
      [ Schema.column "a" Ttype.Int; Schema.column "b" Ttype.String ]
      [| [| vnull; vs "x" |]; [| vnull; vnull |]; [| vnull; vs "y" |] |]
  in
  let rel' = Batch.to_relation (Batch.of_relation rel) in
  Alcotest.(check bool)
    "all-null column survives" true
    (rows_identical (Relation.rows rel) (Relation.rows rel'))

let test_pack_ragged () =
  Alcotest.(check bool)
    "ragged arity refuses to pack" true
    (Batch.pack [| [| vi 1 |]; [| vi 1; vi 2 |] |] = None)

let test_cache_identity () =
  let rel =
    mk [ Schema.column "a" Ttype.Int ] [| [| vi 1 |]; [| vi 2 |] |]
  in
  Batch.prime rel;
  (match Batch.find rel with
  | Some b -> Alcotest.(check int) "cached batch length" 2 (Batch.length b)
  | None -> Alcotest.fail "primed relation not found in cache");
  (* same rows, different relation wrapper: keyed on rows identity *)
  let alias = Relation.make (Relation.schema rel) (Relation.rows rel) in
  Alcotest.(check bool) "alias shares the batch" true
    (Batch.find alias <> None);
  Batch.drop_cache ();
  Alcotest.(check bool) "dropped" true (Batch.find rel = None)

let test_disabled_falls_back () =
  let rel =
    mk [ Schema.column "a" Ttype.Int ] [| [| vi 1 |]; [| vi 2 |] |]
  in
  Batch.set_enabled false;
  Alcotest.(check bool)
    "no plan when disabled" true
    (Batch.filter_plan Expr.(Cmp (Three_valued.Gt, Col 0, Const (vi 1))) rel
    = None);
  Batch.set_enabled true;
  match
    Batch.filter_plan Expr.(Cmp (Three_valued.Gt, Col 0, Const (vi 1))) rel
  with
  | Some plan ->
      Alcotest.(check (list int)) "plan selects" [ 1 ]
        (Array.to_list (plan ~lo:0 ~hi:2))
  | None -> Alcotest.fail "vectorizable predicate did not compile"

let test_unvectorizable () =
  let rel =
    mk [ Schema.column "a" Ttype.String ] [| [| vs "ab" |] |]
  in
  List.iter
    (fun pred ->
      Alcotest.(check bool)
        "outside the subset" true
        (Batch.filter_plan pred rel = None))
    Expr.
      [
        Not (Is_null (Col 0));
        Like (Col 0, "a%");
        Cmp (Three_valued.Eq, Add (Col 0, Const (vi 1)), Const (vi 2));
      ]

let () =
  Alcotest.run "batch"
    [
      ( "units",
        [
          Alcotest.test_case "empty round-trip" `Quick test_empty_roundtrip;
          Alcotest.test_case "mixed int/float column" `Quick
            test_mixed_column_preserved;
          Alcotest.test_case "all-null column" `Quick test_all_null_column;
          Alcotest.test_case "ragged pack" `Quick test_pack_ragged;
          Alcotest.test_case "scan cache identity" `Quick test_cache_identity;
          Alcotest.test_case "toggle fallback" `Quick
            test_disabled_falls_back;
          Alcotest.test_case "unvectorizable forms" `Quick
            test_unvectorizable;
        ] );
      ( "properties",
        [
          qtest prop_roundtrip;
          qtest prop_pack_roundtrip;
          qtest prop_hash_on;
          qtest prop_filter_plan;
        ] );
    ]
