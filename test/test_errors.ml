(* The error-path corpus: malformed and invalid statements must come
   back as [Error] — never an escaped exception — through the public
   facade under every strategy; parse errors carry offsets and caret
   excerpts; and DML stays atomic when validation, budgets, or probes
   fail mid-statement. *)

open Nra

(* the I/O-fault and budget-kill cases assume every scan touches
   storage; a CI-wide NRA_BUFFER_PAGES run would keep hot pages
   resident and free, so pin the pool off *)
let () = Bufpool.set_frames None

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let all_strategies = List.map snd Nra.strategies

let expect_error_all cat sql =
  List.iter
    (fun s ->
      match Nra.exec ~strategy:s cat sql with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.fail
            (Printf.sprintf "%s accepted: %s" (Nra.strategy_to_string s) sql)
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "%s escaped an exception on %s: %s"
               (Nra.strategy_to_string s) sql (Printexc.to_string e)))
    all_strategies

let no_escape cat sql =
  List.iter
    (fun s ->
      match Nra.exec ~strategy:s cat sql with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "%s escaped an exception on %s: %s"
               (Nra.strategy_to_string s) sql (Printexc.to_string e)))
    all_strategies

let test_malformed_corpus () =
  let cat = Test_support.emp_dept_catalog () in
  List.iter (expect_error_all cat)
    [
      "";
      "select";
      "select from emp";
      "select ename emp";
      "select ~ from emp";
      "select ename from";
      "select ename from emp where";
      "select ename from emp where (";
      "select ename from emp where salary in";
      "select 'unterminated from emp";
      "select ename from nosuch";
      "select nocol from emp";
      "select e.nocol from emp as e";
      "select ename from emp where salary in (select dept_id, budget \
       from dept)";
      "select * from emp union select dname from dept";
      "insert into emp values (1)";
      "insert into nosuch values (1)";
      "insert into emp values ('text', 'x', 1, 1, 1)";
      "insert into emp values (7, null, 1, 1, null)";
      "insert into emp values (1, 'dup', null, null, null)";
      "insert into emp select * from dept";
      "delete from nosuch";
      "update nosuch set salary = 1";
      "update emp set nocol = 1";
      "create table emp (x int, primary key (x))";
      "drop table nosuch";
      "analyze nosuch";
      "with emp as (select * from dept) select * from emp";
    ]

let test_weird_but_no_escape () =
  let cat = Test_support.emp_dept_catalog () in
  List.iter (no_escape cat)
    [
      "select ename from emp order by 99";
      "select ename from emp limit 0";
      "select distinct salary from emp where salary > all (select \
       salary from emp)";
      "select ename from emp where salary between null and 10";
      "select ename from emp where not (salary is null)";
      "with w as (select emp_id, ename from emp) select * from w where \
       emp_id in (select dept_id from dept)";
      "select count(*) from emp group by dept_id having count(*) > 1";
      "select * from emp where manager_id = any (select emp_id from emp)";
    ]

let test_query_rejects_commands () =
  let cat = Test_support.emp_dept_catalog () in
  List.iter
    (fun sql ->
      match Nra.query cat sql with
      | Error m ->
          Alcotest.(check string)
            "redirects to exec" "not a query (use Nra.exec for \
                                 DDL/DML/ANALYZE)" m
      | Ok _ -> Alcotest.fail ("query accepted a command: " ^ sql))
    [
      "delete from emp";
      "insert into emp values (9, 'x', null, null, null)";
      "create table zz (a int, primary key (a))";
      "drop table emp";
      "analyze";
    ];
  (* ... and without mutating anything along the way *)
  Alcotest.(check int) "emp untouched" 6
    (Table.cardinality (Catalog.table cat "emp"))

(* ---------- located parse errors ---------- *)

let test_excerpt_rendering () =
  Alcotest.(check string)
    "caret under the offset" "  select x\n         ^"
    (Sql.Parser.excerpt "select x" 7);
  (* long inputs get a bounded window with ellipses *)
  let long = "select " ^ String.make 200 'a' ^ " from emp" in
  let e = Sql.Parser.excerpt long 208 in
  Alcotest.(check bool) "windowed" true (String.length e < 160);
  Alcotest.(check bool) "elided" true (contains e "…")

let test_located_parse_error () =
  match Sql.Parser.parse_command_located "select a fromm emp" with
  | Error { Sql.Parser.message; offset = Some pos; excerpt } ->
      Alcotest.(check int) "offset of the offending token" 15 pos;
      Alcotest.(check bool) "names the expectation" true
        (contains message "expected keyword from");
      Alcotest.(check bool) "excerpt has a caret" true (contains excerpt "^")
  | Error { offset = None; _ } -> Alcotest.fail "offset missing"
  | Ok _ -> Alcotest.fail "parsed nonsense"

let test_lex_error_located () =
  match Sql.Parser.parse_command_located "select ^ from emp" with
  | Error { Sql.Parser.offset = Some pos; excerpt; _ } ->
      Alcotest.(check int) "offset of the bad character" 7 pos;
      Alcotest.(check bool) "excerpt present" true (contains excerpt "^")
  | Error { offset = None; _ } -> Alcotest.fail "offset missing"
  | Ok _ -> Alcotest.fail "lexed nonsense"

let test_rendered_message_via_facade () =
  let cat = Test_support.emp_dept_catalog () in
  match Nra.query cat "select a fromm emp" with
  | Error m ->
      Alcotest.(check bool) "prefix" true (contains m "parse error: ");
      Alcotest.(check bool) "offset" true (contains m "at offset 15");
      Alcotest.(check bool) "caret line" true (contains m "\n")
  | Ok _ -> Alcotest.fail "parsed nonsense"

(* ---------- the structured API ---------- *)

let test_structured_errors () =
  let cat = Test_support.emp_dept_catalog () in
  (match Nra.run cat "select a fromm emp" with
  | Error (Exec_error.Parse { offset = Some 15; excerpt; _ }) ->
      Alcotest.(check bool) "caret" true (contains excerpt "^")
  | Error e -> Alcotest.fail ("wrong class: " ^ Exec_error.to_string e)
  | Ok _ -> Alcotest.fail "parsed nonsense");
  (match Nra.run cat "select * from nosuch" with
  | Error (Exec_error.Invalid _) -> ()
  | Error e -> Alcotest.fail ("wrong class: " ^ Exec_error.to_string e)
  | Ok _ -> Alcotest.fail "resolved nonsense");
  (match
     Nra.run
       ~guard:(Guard.budget ~sim_io_ms:1e-9 ())
       cat
       "select ename from emp where dept_id in (select dept_id from \
        dept where budget > 40)"
   with
  | Error (Exec_error.Budget_exceeded Guard.Sim_io) -> ()
  | Error e -> Alcotest.fail ("wrong class: " ^ Exec_error.to_string e)
  | Ok _ -> Alcotest.fail "expected a kill");
  let tok = Guard.token () in
  Guard.cancel tok;
  match
    Nra.run ~guard:(Guard.budget ~cancel_on:tok ()) cat
      "select ename from emp"
  with
  | Error Exec_error.Cancelled -> ()
  | Error e -> Alcotest.fail ("wrong class: " ^ Exec_error.to_string e)
  | Ok _ -> Alcotest.fail "expected cancellation"

(* ---------- DML atomicity ---------- *)

let test_insert_batch_atomic () =
  let cat = Test_support.emp_dept_catalog () in
  let gen0 = Catalog.generation cat "emp" in
  (* second row collides on the key: the whole batch must be rejected *)
  (match
     Nra.exec cat
       "insert into emp values (8, 'ok', null, null, null), (8, 'dup', \
        null, null, null)"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate key accepted");
  Alcotest.(check int) "no partial insert" 6
    (Table.cardinality (Catalog.table cat "emp"));
  Alcotest.(check int) "generation untouched" gen0
    (Catalog.generation cat "emp")

let test_dml_atomic_under_budget_kill () =
  let cat = Test_support.emp_dept_catalog () in
  let gen0 = Catalog.generation cat "emp" in
  let guard = Guard.budget ~sim_io_ms:1e-9 () in
  (match
     Nra.exec ~guard cat
       "delete from emp where dept_id in (select dept_id from dept \
        where budget > 0)"
   with
  | Error m ->
      Alcotest.(check bool) "killed" true (contains m "budget exceeded")
  | Ok _ -> Alcotest.fail "expected the probe to be killed");
  Alcotest.(check int) "rows untouched" 6
    (Table.cardinality (Catalog.table cat "emp"));
  Alcotest.(check int) "generation untouched" gen0
    (Catalog.generation cat "emp");
  (* insert-select killed mid-probe leaves the target empty *)
  (match
     Nra.exec cat
       "create table names (emp_id int, ename string, primary key \
        (emp_id))"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match
     Nra.exec ~guard cat
       "insert into names select emp_id, ename from emp where dept_id \
        in (select dept_id from dept where budget > 0)"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the insert's query to be killed");
  Alcotest.(check int) "target still empty" 0
    (Table.cardinality (Catalog.table cat "names"));
  (* the engine (and its I/O accounting) survives: the same statements
     succeed without the budget *)
  match Nra.exec cat "delete from emp where dept_id in (select dept_id \
                      from dept where budget > 0)" with
  | Ok (Nra.Count n) -> Alcotest.(check int) "deletes after kill" 4 n
  | Ok _ -> Alcotest.fail "expected a count"
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "errors"
    [
      ( "corpus",
        [
          Alcotest.test_case "malformed -> Error everywhere" `Quick
            test_malformed_corpus;
          Alcotest.test_case "odd statements never escape" `Quick
            test_weird_but_no_escape;
          Alcotest.test_case "query refuses commands" `Quick
            test_query_rejects_commands;
        ] );
      ( "located",
        [
          Alcotest.test_case "excerpt rendering" `Quick
            test_excerpt_rendering;
          Alcotest.test_case "parse error offset" `Quick
            test_located_parse_error;
          Alcotest.test_case "lex error offset" `Quick
            test_lex_error_located;
          Alcotest.test_case "rendered via facade" `Quick
            test_rendered_message_via_facade;
        ] );
      ( "structured",
        [
          Alcotest.test_case "taxonomy" `Quick test_structured_errors;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "batch insert" `Quick test_insert_batch_atomic;
          Alcotest.test_case "budget kill mid-DML" `Quick
            test_dml_atomic_under_budget_kill;
        ] );
    ]
