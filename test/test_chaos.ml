(* Chaos-recovery harness (ISSUE: memory governor, crash-consistent
   materialization): randomized sweeps over the whole robustness
   surface at once.

   1. Crash chaos: for every frame budget {4, 8, 32, unbounded} x
      domain count {0, 2, 4}, every statement of a small DML + WITH
      corpus is crashed at every one of its fault points; recovery
      must restore the byte-exact pre-statement catalog, twice
      (idempotence).  WITH is the new coverage: CTE materialization
      is WAL-logged, so a crash mid-statement can no longer leak a
      temp table.

   2. Identity matrix: seeded random scheduler interleavings of
      corpus statements, per budget x domain x strategy, must each
      produce the serial-unbounded CSV byte-for-byte — out-of-core,
      parallel, and time-slicing compose.  Under the 4-frame budget
      the governor must never have kept a staging larger than the
      budget resident.

   3. Auto interleaving: two Auto statements at a tiny quantum must
      genuinely alternate slices (the attempt no longer runs inside a
      no-yield critical section) and still match serial results. *)

open Nra
open Test_support
module Scheduler = Nra_server.Scheduler
module I = Nra.Iosim
module B = Nra.Bufpool

(* the harness numbers fault points and pins schedules itself; a
   CI-wide NRA_FAULT_INJECT must not perturb the draw sequence *)
let () = Fault.disable ()

let splitmix seed =
  let s = ref (Int64.of_int ((seed * 2) + 1)) in
  fun bound ->
    s := Int64.add !s 0x9E3779B97F4A7C15L;
    let z = !s in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.unsigned_rem z (Int64.of_int bound))

let budgets = [ ("4", Some 4); ("8", Some 8); ("32", Some 32); ("inf", None) ]
let domain_counts = [ 0; 2; 4 ]

(* small pages so the six-row fixtures genuinely overflow the tiny
   budgets (same shrink as the out-of-core suite) *)
let with_config ?(rows_per_page = 2) ~frames ~domains f =
  let saved = I.config () in
  I.set_config { saved with I.rows_per_page };
  I.reset ();
  B.set_frames frames;
  Nra_pool.Pool.set_size domains;
  Fun.protect
    ~finally:(fun () ->
      Nra_pool.Pool.set_size 0;
      B.set_frames None;
      I.set_config saved;
      I.reset ();
      Fault.disable ())
    f

let fingerprint cat =
  Catalog.tables cat
  |> List.map (fun t -> (Table.name t, Relation.to_csv (Table.relation t)))
  |> List.sort compare
  |> List.map (fun (n, csv) -> n ^ "\n" ^ csv)
  |> String.concat "\n====\n"

let fresh () =
  Wal.reset ();
  I.reset ();
  Fault.configure 0.0;
  emp_dept_catalog ()

let exec_ok cat sql =
  match Nra.exec cat sql with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "statement %S failed: %s" sql m

(* ---------- 1. crash chaos across budgets and domains ---------- *)

(* one statement per WAL-logged shape, WITH included now that CTE
   materialization logs Create/Drop records *)
let chaos_corpus =
  [
    ( "insert-select",
      [ "create table hipay (emp_id int, salary int, primary key (emp_id))" ],
      "insert into hipay select emp_id, salary from emp where salary >= 60" );
    ( "update-subquery",
      [],
      "update dept set budget = 0 where not exists (select * from emp \
       where emp.dept_id = dept.dept_id and emp.salary >= 70)" );
    ( "with-materialize",
      [],
      "with rich as (select emp_id, ename, salary from emp where salary \
       >= 60) select ename from rich where emp_id in (select lead_emp \
       from project)" );
  ]

let test_crash_chaos () =
  List.iter
    (fun (bname, frames) ->
      List.iter
        (fun domains ->
          with_config ~frames ~domains @@ fun () ->
          List.iter
            (fun (name, setup, sql) ->
              (* count this config's fault points with a clean dry run *)
              let cat = fresh () in
              List.iter (exec_ok cat) setup;
              let d0 = Fault.draws () in
              exec_ok cat sql;
              let n = Fault.draws () - d0 in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/d%d: draws fault points" name bname
                   domains)
                true (n > 0);
              for k = 1 to n do
                let cat = fresh () in
                List.iter (exec_ok cat) setup;
                let before = fingerprint cat in
                Fault.arm_crash ~at:(Fault.draws () + k);
                (match Nra.exec cat sql with
                | exception Fault.Crash _ -> ()
                | Ok _ ->
                    Alcotest.failf
                      "%s/%s/d%d: crash at point %d/%d did not fire" name
                      bname domains k n
                | Error m ->
                    Alcotest.failf
                      "%s/%s/d%d: crash at %d/%d surfaced as error: %s" name
                      bname domains k n m);
                Fault.disarm ();
                ignore (Wal.recover cat);
                Alcotest.(check string)
                  (Printf.sprintf "%s/%s/d%d: recovered @%d/%d" name bname
                     domains k n)
                  before (fingerprint cat);
                ignore (Wal.recover cat);
                Alcotest.(check string)
                  (Printf.sprintf "%s/%s/d%d: recover twice @%d/%d" name
                     bname domains k n)
                  before (fingerprint cat)
              done)
            chaos_corpus)
        domain_counts)
    budgets

(* a clean WITH leaves no trace either: temps dropped, WAL committed *)
let test_with_leaves_no_trace () =
  let cat = fresh () in
  let before = fingerprint cat in
  (match
     Nra.query cat
       "with rich as (select emp_id, ename from emp where salary >= 60) \
        select ename from rich"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check string) "catalog unchanged" before (fingerprint cat);
  Alcotest.(check bool) "WAL has no torn statement" false
    (Wal.needs_recovery ())

(* startup repair: a torn WAL is healed by recover_if_needed, and a
   clean WAL reports nothing to do *)
let test_startup_recovery () =
  let cat = fresh () in
  Alcotest.(check bool) "clean WAL: no recovery" true
    (Wal.recover_if_needed cat = None);
  let before = fingerprint cat in
  let d0 = Fault.draws () in
  exec_ok cat "insert into emp values (7, 'gil', 2, 55, 1)";
  let n = Fault.draws () - d0 in
  let cat = fresh () in
  let before' = fingerprint cat in
  Alcotest.(check string) "fresh worlds agree" before before';
  Fault.arm_crash ~at:(Fault.draws () + (n / 2) + 1);
  (match Nra.exec cat "insert into emp values (7, 'gil', 2, 55, 1)" with
  | exception Fault.Crash _ -> ()
  | _ -> Alcotest.fail "crash did not fire");
  Fault.disarm ();
  Alcotest.(check bool) "torn WAL detected" true (Wal.needs_recovery ());
  (match Wal.recover_if_needed cat with
  | Some _ -> ()
  | None -> Alcotest.fail "startup recovery did not run");
  Alcotest.(check string) "startup recovery healed the catalog" before
    (fingerprint cat);
  Alcotest.(check bool) "healed WAL: nothing further" true
    (Wal.recover_if_needed cat = None)

(* ---------- 2. identity matrix under interleaving ---------- *)

let corpus = Array.of_list subquery_corpus

let interleaved_results ~seed ~strategy cat sqls =
  let rand = splitmix seed in
  let chooser ~now:_ ids = List.nth ids (rand (List.length ids)) in
  let sch = Scheduler.create ~quantum_ms:0.02 ~chooser () in
  let n = Array.length sqls in
  let results = Array.make n None in
  Array.iteri
    (fun i sql ->
      ignore
        (Scheduler.spawn sch
           ~label:(Printf.sprintf "q%d" i)
           (fun () -> results.(i) <- Some (Nra.query ~strategy cat sql))))
    sqls;
  Scheduler.run_until_idle sch;
  Alcotest.(check int) "all tasks retired" 0 (Scheduler.alive sch);
  Array.map
    (function
      | Some r -> r
      | None -> Alcotest.fail "task finished without a result")
    results

let test_identity_matrix () =
  (* serial, unbounded, single-domain reference CSVs *)
  let reference strategy =
    let saved = I.config () in
    I.set_config { saved with I.rows_per_page = 2 };
    I.reset ();
    Fun.protect ~finally:(fun () ->
        I.set_config saved;
        I.reset ())
    @@ fun () ->
    let cat = emp_dept_catalog () in
    ignore (Nra.exec cat "analyze");
    Array.map
      (fun sql ->
        match Nra.query ~strategy cat sql with
        | Ok rel -> Ok (Relation.to_csv rel)
        | Error m -> Error m)
      corpus
  in
  List.iter
    (fun strategy ->
      let refs = reference strategy in
      List.iter
        (fun (bname, frames) ->
          List.iter
            (fun domains ->
              with_config ~frames ~domains @@ fun () ->
              let cat = emp_dept_catalog () in
              ignore (Nra.exec cat "analyze");
              for seed = 0 to 1 do
                let idx =
                  Array.init 4 (fun k ->
                      ((seed * 7) + (k * 5)) mod Array.length corpus)
                in
                let sqls = Array.map (fun i -> corpus.(i)) idx in
                let results =
                  interleaved_results ~seed ~strategy cat sqls
                in
                Array.iteri
                  (fun k r ->
                    let what =
                      Printf.sprintf "%s frames=%s domains=%d seed=%d: %s"
                        (Nra.strategy_to_string strategy)
                        bname domains seed sqls.(k)
                    in
                    match (refs.(idx.(k)), r) with
                    | Ok want, Ok rel ->
                        Alcotest.(check string)
                          (what ^ ": CSV identical to serial-unbounded")
                          want (Relation.to_csv rel)
                    | Error want, Error got ->
                        Alcotest.(check string) (what ^ ": same error") want
                          got
                    | Ok _, Error e ->
                        Alcotest.failf "%s: failed where serial ran: %s"
                          what e
                    | Error e, Ok _ ->
                        Alcotest.failf "%s: ran where serial failed: %s"
                          what e)
                  results;
                (* the governor's structural bound: no unspilled staging
                   ever exceeded the frame budget *)
                match frames with
                | Some f ->
                    let gv = Governor.stats () in
                    Alcotest.(check bool)
                      (Printf.sprintf
                         "frames=%s domains=%d seed=%d: largest resident \
                          staging %d page(s) within budget"
                         bname domains seed gv.Governor.max_resident_pages)
                      true
                      (gv.Governor.max_resident_pages <= f)
                | None -> ()
              done)
            domain_counts)
        budgets)
    [ Nra.Nra_optimized; Nra.Auto ]

(* WAL-logged CTE materialization under time-slicing: two WITH
   statements with distinct temp names interleave and match serial *)
let test_with_under_interleaving () =
  let w1 =
    "with rich as (select emp_id, ename, salary from emp where salary >= \
     60) select ename from rich where salary >= 70"
  and w2 =
    "with leads as (select lead_emp from project where hours >= 10) \
     select ename from emp where emp_id in (select lead_emp from leads)"
  in
  let cat = emp_dept_catalog () in
  let serial = List.map (fun s -> Nra.query cat s) [ w1; w2 ] in
  for seed = 0 to 4 do
    let results =
      interleaved_results ~seed ~strategy:Nra.Nra_optimized cat
        [| w1; w2 |]
    in
    List.iteri
      (fun i want ->
        match (want, results.(i)) with
        | Ok a, Ok b ->
            Alcotest.(check string)
              (Printf.sprintf "seed %d: WITH %d matches serial" seed i)
              (Relation.to_csv a) (Relation.to_csv b)
        | _ -> Alcotest.fail "WITH under interleaving errored")
      serial;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: no torn WAL statement left" seed)
      false (Wal.needs_recovery ())
  done

(* ---------- 3. Auto statements genuinely interleave ---------- *)

let test_auto_interleaves () =
  let cat = emp_dept_catalog () in
  ignore (Nra.exec cat "analyze");
  let q1 =
    "select dname from dept where budget < any (select salary from emp \
     where emp.dept_id = dept.dept_id and exists (select * from project \
     where project.lead_emp = emp.emp_id))"
  and q2 =
    "select ename from emp where salary > (select avg(salary) from emp \
     e2 where e2.dept_id = emp.dept_id)"
  in
  let serial = [| Nra.query ~strategy:Nra.Auto cat q1;
                  Nra.query ~strategy:Nra.Auto cat q2 |] in
  (* round-robin chooser: always hand the slice to the other live
     task, and record every pick.  Before the Auto attempt ran under
     with_no_yield this schedule degenerated to serial — one task held
     the engine until it finished. *)
  let picks = ref [] in
  let last = ref (-1) in
  let chooser ~now:_ ids =
    let pick =
      match List.filter (fun i -> i <> !last) ids with
      | alt :: _ -> alt
      | [] -> List.hd ids
    in
    last := pick;
    picks := pick :: !picks;
    pick
  in
  let sch = Scheduler.create ~quantum_ms:0.005 ~chooser () in
  let results = Array.make 2 None in
  ignore
    (Scheduler.spawn sch ~label:"auto1" (fun () ->
         results.(0) <- Some (Nra.query ~strategy:Nra.Auto cat q1)));
  ignore
    (Scheduler.spawn sch ~label:"auto2" (fun () ->
         results.(1) <- Some (Nra.query ~strategy:Nra.Auto cat q2)));
  Scheduler.run_until_idle sch;
  let order = List.rev !picks in
  (* a genuine interleaving: some task regained a slice after the
     other ran (an a..b..a subsequence) *)
  let rec alternated seen_pairs = function
    | a :: (b :: _ as rest) ->
        if a <> b && List.mem (b, a) seen_pairs then true
        else alternated ((a, b) :: seen_pairs) rest
    | _ -> false
  in
  Alcotest.(check bool)
    (Printf.sprintf "auto statements alternated (%d scheduling points)"
       (List.length order))
    true
    (alternated [] order);
  Array.iteri
    (fun i r ->
      match (serial.(i), r) with
      | Ok a, Some (Ok b) ->
          Alcotest.(check bool)
            (Printf.sprintf "auto statement %d matches serial" i)
            true (Relation.equal_bag a b)
      | _ -> Alcotest.fail "auto statement errored under interleaving")
    results

let () =
  Alcotest.run "chaos"
    [
      ( "crash",
        [
          Alcotest.test_case "every budget x domains x fault point" `Quick
            test_crash_chaos;
          Alcotest.test_case "WITH leaves no trace" `Quick
            test_with_leaves_no_trace;
          Alcotest.test_case "startup recovery" `Quick
            test_startup_recovery;
        ] );
      ( "identity",
        [
          Alcotest.test_case "interleaved matrix matches serial-unbounded"
            `Quick test_identity_matrix;
          Alcotest.test_case "WITH under interleaving" `Quick
            test_with_under_interleaving;
        ] );
      ( "auto",
        [
          Alcotest.test_case "auto statements interleave" `Quick
            test_auto_interleaves;
        ] );
    ]
